//! Security analytics — the paper's §8.1 information-security platform.
//!
//! Two production patterns from that deployment:
//!
//! 1. **Stream–stream join in real time**: "an analyst can simply join
//!    the TCP logs with DHCP logs to map the IP address to the MAC
//!    address" — mobile devices get dynamic IPs, so TCP logs alone
//!    can't identify the machine. Both logs stream in; the join buffers
//!    each side and watermarks bound the buffered state.
//! 2. **DNS exfiltration alert**: "computes the aggregate size of the
//!    DNS requests sent by every host over a time interval. If the
//!    aggregate is greater than a given threshold, the query flags the
//!    corresponding host" — expressed in SQL, deployed as a streaming
//!    query with update output.
//!
//! Run: `cargo run --release --example security_analytics`

use std::sync::Arc;

use structured_streaming::prelude::*;

fn ts(seconds: i64) -> Value {
    Value::Timestamp(seconds * 1_000_000)
}

fn main() -> Result<(), SsError> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("tcp_logs", 1)?;
    bus.create_topic("dhcp_logs", 1)?;
    bus.create_topic("dns_logs", 1)?;

    let tcp_schema = Schema::of(vec![
        Field::new("src_ip", DataType::Utf8),
        Field::new("dst_port", DataType::Int64),
        Field::new("tcp_time", DataType::Timestamp),
    ]);
    let dhcp_schema = Schema::of(vec![
        Field::new("ip", DataType::Utf8),
        Field::new("mac", DataType::Utf8),
        Field::new("lease_time", DataType::Timestamp),
    ]);
    let dns_schema = Schema::of(vec![
        Field::new("host", DataType::Utf8),
        Field::new("request_bytes", DataType::Int64),
        Field::new("dns_time", DataType::Timestamp),
    ]);

    let ctx = StreamingContext::new();
    let tcp = ctx.read_source(Arc::new(BusSource::new(bus.clone(), "tcp_logs", tcp_schema)?))?;
    let dhcp = ctx.read_source(Arc::new(BusSource::new(bus.clone(), "dhcp_logs", dhcp_schema)?))?;
    ctx.read_source(Arc::new(BusSource::new(bus.clone(), "dns_logs", dns_schema)?))?;

    // ---- 1. real-time TCP ⋈ DHCP: which device opened the connection?
    let connections = tcp
        .with_watermark("tcp_time", "10 minutes")?
        .join(
            &dhcp.with_watermark("lease_time", "10 minutes")?,
            JoinType::Inner,
            vec![(col("src_ip"), col("ip"))],
        )
        .select(vec![col("mac"), col("src_ip"), col("dst_port"), col("tcp_time")]);
    let conn_sink = MemorySink::new("connections");
    let mut conn_query = connections
        .write_stream()
        .query_name("tcp-dhcp-join")
        .output_mode(OutputMode::Append)
        .sink(conn_sink.clone())
        .start_sync()?;

    // DHCP lease arrives first, TCP connections later — the join
    // buffers until both sides meet.
    bus.append("dhcp_logs", 0, vec![row!["10.0.0.7", "aa:bb:cc:dd:ee:ff", ts(5)]])?;
    conn_query.process_available()?;
    bus.append(
        "tcp_logs",
        0,
        vec![
            row!["10.0.0.7", 443i64, ts(61)],
            row!["10.0.0.9", 22i64, ts(62)], // no DHCP lease seen: no match
        ],
    )?;
    conn_query.process_available()?;
    println!("-- device-resolved connections (stream x stream join):");
    for r in conn_sink.snapshot() {
        println!("   {r}");
    }

    // ---- 2. the DNS exfiltration alert, written in SQL --------------
    let alerts = structured_streaming::sql(
        &ctx,
        "SELECT window_start, host, SUM(request_bytes) AS sent \
         FROM dns_logs \
         GROUP BY WINDOW(dns_time, '1 min'), host",
    )?;
    let alert_sink = MemorySink::new("alerts");
    let mut alert_query = alerts
        .write_stream()
        .query_name("dns-exfiltration")
        .output_mode(OutputMode::Update)
        .sink(alert_sink.clone())
        .start_sync()?;

    // host-b piggybacks large payloads onto DNS requests.
    bus.append(
        "dns_logs",
        0,
        vec![
            row!["host-a", 120i64, ts(10)],
            row!["host-b", 48_000i64, ts(11)],
            row!["host-b", 52_000i64, ts(20)],
            row!["host-a", 95i64, ts(25)],
        ],
    )?;
    alert_query.process_available()?;

    const THRESHOLD: i64 = 64_000; // set from historical data (§8.1)
    println!("-- DNS bytes per host per 1-minute window (alert threshold {THRESHOLD}):");
    for r in alert_sink.snapshot() {
        let sent = r.get(2).as_i64()?.unwrap_or(0);
        let flag = if sent > THRESHOLD { "  <-- ALERT: possible exfiltration" } else { "" };
        println!("   {r}{flag}");
    }

    // The same business logic can be validated on historical data
    // first (§8.1: "build and test queries for detecting new attacks
    // on offline data, and then deploy") — identical query, batch run:
    let offline = alerts.collect()?;
    assert_eq!(offline.num_rows() as usize, alert_sink.snapshot().len());
    println!("-- offline (batch) validation returned the same {} rows", offline.num_rows());

    conn_query.stop()?;
    alert_query.stop()?;
    Ok(())
}
