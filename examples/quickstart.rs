//! Quickstart — the paper's §4.1 example, end to end.
//!
//! A batch job that counts clicks by country, then the *same query* run
//! as a streaming job by changing only the input and output lines —
//! the paper's core pitch. JSON files appear in an input directory; the
//! streaming query incrementally maintains the counts and writes each
//! update to an output directory.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use structured_streaming::prelude::*;

fn main() -> Result<(), SsError> {
    let dir = std::env::temp_dir().join(format!("ss-quickstart-{}", std::process::id()));
    let in_dir = dir.join("in");
    let out_dir = dir.join("counts");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&in_dir)?;

    let schema = Schema::of(vec![
        Field::new("country", DataType::Utf8),
        Field::new("time", DataType::Timestamp),
    ]);

    // --- The batch version (paper §4.1, first listing) ---------------
    // data = spark.read.format("json").load("/in")
    // counts = data.groupBy($"country").count()
    std::fs::write(
        in_dir.join("batch-0.json"),
        "{\"country\":\"CA\",\"time\":1000000}\n{\"country\":\"US\",\"time\":2000000}\n",
    )?;
    let ctx = StreamingContext::new();
    let source = Arc::new(FileSource::new(&in_dir, schema.clone())?);
    let data = ctx.read_source(source)?;
    let counts = data.group_by(vec![col("country")]).count();

    println!("-- batch run over the files present right now:");
    println!("{}", counts.collect()?);

    // --- The streaming version: only the I/O lines change ------------
    // data = spark.readStream.format("json").load("/in")
    // counts.writeStream.format("parquet").outputMode("complete").start("/counts")
    let sink = FileSink::new(&out_dir)?;
    let mut query = counts
        .write_stream()
        .query_name("click-counts")
        .output_mode(OutputMode::Complete)
        .sink(sink.clone())
        .checkpoint_dir(dir.join("checkpoint"))?
        .start_sync()?;

    // New files keep arriving; each drained epoch updates the result.
    query.process_available()?;
    println!("-- streaming result after the first epoch:");
    for line in sink.read_all()? {
        println!("   {line}");
    }

    std::fs::write(
        in_dir.join("batch-1.json"),
        "{\"country\":\"CA\",\"time\":3000000}\n{\"country\":\"DE\",\"time\":4000000}\n",
    )?;
    query.process_available()?;
    println!("-- streaming result after more files arrived:");
    for line in sink.read_all()? {
        println!("   {line}");
    }

    if let Some(p) = query.last_progress() {
        println!("-- progress: {}", p.summary());
    }
    query.stop()?;
    std::fs::remove_dir_all(&dir)?;
    println!("done.");
    Ok(())
}
