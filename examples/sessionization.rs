//! Sessionization — the paper's Figure 3, in Rust.
//!
//! "Using mapGroupsWithState to track the number of events per
//! session, timing out sessions after 30 minutes": a stateful operator
//! tracks a per-user event count; a processing-time timeout closes
//! idle sessions and removes their state. Custom session windows are
//! exactly the "advanced users can use stateful operators to implement
//! custom logic while fitting into the incremental model" case (§1).
//!
//! Run: `cargo run --release --example sessionization`

use std::sync::Arc;

use ss_core::microbatch::MicroBatchConfig;
use structured_streaming::prelude::*;

fn main() -> Result<(), SsError> {
    let bus = Arc::new(MessageBus::new());
    bus.create_topic("events", 1)?;
    let schema = Schema::of(vec![
        Field::new("userId", DataType::Utf8),
        Field::new("page", DataType::Utf8),
        Field::new("time", DataType::Timestamp),
    ]);

    let ctx = StreamingContext::new();
    let events = ctx.read_source(Arc::new(BusSource::new(bus.clone(), "events", schema)?))?;

    // The Figure 3 update function: state = total events for the key;
    // on timeout, emit the final session length and drop the state.
    let output_schema = Schema::of(vec![
        Field::new("userId", DataType::Utf8),
        Field::new("totalEvents", DataType::Int64),
        Field::new("sessionClosed", DataType::Boolean),
    ]);
    let thirty_min = 30 * 60 * 1_000_000i64;
    let lens = events.flat_map_groups_with_state(
        "sessions",
        vec![col("userId")],
        output_schema,
        StateTimeout::ProcessingTime,
        Arc::new(move |key, new_values, state| {
            if state.has_timed_out() {
                // The session went idle for 30 minutes: close it.
                let total = state
                    .get()
                    .and_then(|r| r.get(0).as_i64().ok().flatten())
                    .unwrap_or(0);
                state.remove();
                return Ok(vec![Row::new(vec![
                    key.get(0).clone(),
                    Value::Int64(total),
                    Value::Boolean(true),
                ])]);
            }
            let total = state
                .get()
                .and_then(|r| r.get(0).as_i64().ok().flatten())
                .unwrap_or(0)
                + new_values.len() as i64;
            state.update(row![total]);
            state.set_timeout_duration(thirty_min)?;
            Ok(vec![Row::new(vec![
                key.get(0).clone(),
                Value::Int64(total),
                Value::Boolean(false),
            ])])
        }),
    );

    // A deterministic processing-time clock so the example's timeouts
    // are reproducible (the engine's clock is injectable).
    let now = ss_common::StepClock::frozen(0);
    let config = MicroBatchConfig {
        clock: now.handle(),
        ..Default::default()
    };

    let sink = MemorySink::new("sessions");
    let mut query = lens
        .write_stream()
        .query_name("sessionization")
        .output_mode(OutputMode::Update)
        .engine_config(config)
        .sink(sink.clone())
        .start_sync()?;

    let minute = 60 * 1_000_000i64;
    // t=0: alice browses, bob opens one page.
    now.set_us(0);
    bus.append("events", 0, vec![
        row!["alice", "/home", Value::Timestamp(0)],
        row!["alice", "/search", Value::Timestamp(minute)],
        row!["bob", "/home", Value::Timestamp(minute)],
    ])?;
    query.process_available()?;

    // t=20min: alice continues (re-arming her timeout); bob idles.
    now.set_us(20 * minute);
    bus.append("events", 0, vec![row!["alice", "/cart", Value::Timestamp(20 * minute)]])?;
    query.process_available()?;

    // t=35min: bob has been idle for 34 minutes -> his session closes.
    // (alice re-armed her timeout at t=20min, so she survives.)
    now.set_us(35 * minute);
    query.run_epoch()?;

    println!("-- session updates so far (update mode):");
    for r in sink.snapshot() {
        println!("   {r}");
    }
    println!("-- live sessions still tracked in the state store: {}", query.state_rows());

    // t=55min: alice idles past 30 minutes too.
    now.set_us(55 * minute);
    query.run_epoch()?;
    println!("-- after alice idles past 30 minutes:");
    for r in sink.snapshot() {
        println!("   {r}");
    }
    println!("-- live sessions: {}", query.state_rows());

    query.stop()?;
    Ok(())
}
