//! Operational features — §7 of the paper, in one tour:
//!
//! * **restart & exactly-once recovery** (§6.1): kill a query
//!   mid-stream, restart from the WAL + state checkpoint, and the sink
//!   holds exactly-once results;
//! * **manual rollback** (§7.2): recompute from an earlier epoch after
//!   a "bad code" deployment wrote wrong output;
//! * **code update** (§7.1): restart the query with a fixed UDF and
//!   continue from where it left off;
//! * **run-once trigger** (§7.3): "discontinuous processing" — run a
//!   streaming job as periodic batch jobs while keeping its
//!   transactional state.
//!
//! Run: `cargo run --release --example operations`

use std::sync::Arc;

use structured_streaming::prelude::*;

fn schema() -> SchemaRef {
    Schema::of(vec![
        Field::new("sensor", DataType::Utf8),
        Field::new("reading", DataType::Int64),
        Field::new("time", DataType::Timestamp),
    ])
}

/// The pipeline under operation: per-sensor totals. `scale` stands in
/// for the user-defined logic that gets "updated" in the code-update
/// scenario.
fn build_query(
    ctx: &StreamingContext,
    sink: Arc<MemorySink>,
    backend: Arc<FsBackend>,
    scale: i64,
) -> Result<StreamingQuery, SsError> {
    let readings = ctx
        .table("sensors")? // re-attach to the registered source
        .select(vec![
            col("sensor"),
            col("reading").mul(lit(scale)).alias("value"),
            col("time"),
        ])
        .group_by(vec![col("sensor")])
        .agg(vec![sum(col("value"))]);
    readings
        .write_stream()
        .query_name("sensor-totals")
        .output_mode(OutputMode::Complete)
        .sink(sink)
        .checkpoint(backend)
        .start_sync()
}

fn main() -> Result<(), SsError> {
    let dir = std::env::temp_dir().join(format!("ss-operations-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = Arc::new(FsBackend::new(&dir)?);

    let bus = Arc::new(MessageBus::new());
    bus.create_topic("sensors", 1)?;
    let ctx = StreamingContext::new();
    ctx.read_source(Arc::new(BusSource::new(bus.clone(), "sensors", schema())?))?;
    let sink = MemorySink::new("totals");

    // ---- normal operation, then a crash --------------------------------
    {
        let mut query = build_query(&ctx, sink.clone(), backend.clone(), 1)?;
        bus.append("sensors", 0, vec![row!["s1", 10i64, Value::Timestamp(0)]])?;
        query.process_available()?;
        println!("epoch 1 committed: {:?}", sink.snapshot());
        // The process "crashes" here: the query handle is dropped, but
        // the WAL and state checkpoints are on disk.
    }
    bus.append("sensors", 0, vec![row!["s1", 5i64, Value::Timestamp(1)], row!["s2", 7i64, Value::Timestamp(2)]])?;

    // ---- restart: recovery resumes from the last committed epoch -------
    {
        let mut query = build_query(&ctx, sink.clone(), backend.clone(), 1)?;
        println!("recovered at epoch {} (from the JSON WAL under {:?})", query.current_epoch(), dir);
        query.process_available()?;
        println!("after restart + new data: {:?}", sink.snapshot());
        assert_eq!(sink.snapshot(), vec![row!["s1", 15i64], row!["s2", 7i64]]);
        query.stop()?;
    }

    // ---- a bad deployment, then manual rollback (§7.2) -----------------
    {
        // "Oops": someone ships scale=100. The job keeps committing
        // wrong results for an epoch before anyone notices.
        let mut bad = build_query(&ctx, sink.clone(), backend.clone(), 100)?;
        let rollback_point = bad.current_epoch();
        bus.append("sensors", 0, vec![row!["s1", 1i64, Value::Timestamp(3)]])?;
        bad.process_available()?;
        println!("after the bad deploy: {:?}", sink.snapshot());
        bad.stop()?;

        // The administrator rolls the application back to the epoch
        // before the bad deploy and restarts the *fixed* code; the
        // engine recomputes from the retained input.
        let mut fixed = build_query(&ctx, sink.clone(), backend.clone(), 1)?;
        fixed.rollback_to(rollback_point)?;
        fixed.process_available()?;
        println!("after rollback + fixed code: {:?}", sink.snapshot());
        assert_eq!(sink.snapshot(), vec![row!["s1", 16i64], row!["s2", 7i64]]);
        fixed.stop()?;
    }

    // ---- run-once trigger (§7.3) ---------------------------------------
    // "Running a single epoch of a Structured Streaming job every few
    // hours as a batch computation" — each invocation drains what is
    // available, commits transactionally, and exits.
    for round in 0..2 {
        bus.append("sensors", 0, vec![row!["s3", round + 1, Value::Timestamp(10 + round)]])?;
        let mut once = build_query(&ctx, sink.clone(), backend.clone(), 1)?;
        let epochs = once.process_available()?;
        println!("run-once invocation {round}: {epochs} epoch(s), totals {:?}", sink.snapshot());
        once.stop()?;
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
